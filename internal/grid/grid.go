// Package grid builds the plane-wave discretization: the wavefunction
// G-sphere (all G with |G|^2/2 <= Ecut), its containing FFT box, and the
// twice-denser charge-density box, together with scatter/gather maps and
// normalization-aware transforms between G-space coefficients and real
// space. With the paper's parameters (Ecut = 10 Ha, 4 x 6 x 8 silicon
// supercell) it reproduces the paper's 60 x 90 x 120 wavefunction grid and
// 120 x 180 x 240 density grid exactly.
//
// Conventions: psi(r) = (1/sqrt(Omega)) * sum_G c_G exp(i G.r) with the
// sphere coefficients c_G stored contiguously; densities and potentials are
// real-space arrays on the dense box with Fourier coefficients f_G such that
// f(r) = sum_G f_G exp(i G.r).
package grid

import (
	"fmt"
	"math"

	"ptdft/internal/fourier"
	"ptdft/internal/lanes"
	"ptdft/internal/lattice"
	"ptdft/internal/parallel"
)

// Grid holds the discretization for one cell and cutoff.
type Grid struct {
	Cell *lattice.Cell
	Ecut float64 // wavefunction kinetic energy cutoff, Hartree

	// Wavefunction box.
	N    [3]int // FFT dims
	NTot int
	Plan *fourier.Plan3

	// Dense (charge density) box, double the linear resolution.
	ND    [3]int
	NDTot int
	PlanD *fourier.Plan3

	// G-sphere: indices into the wavefunction box and the dense box, plus
	// the G vectors and |G|^2 per sphere entry.
	NG         int
	SphereIdx  []int
	SphereIdxD []int
	GVec       [][3]float64
	G2         []float64
	MillerIdx  [][3]int
	// G2Dense holds |G|^2 for every dense-box point (Hartree kernel).
	G2Dense []float64
	// GVecDense holds the G vector for every dense-box point.
	GVecDense [][3]float64
}

// New builds the grids for the given cell and wavefunction cutoff (Ha).
func New(cell *lattice.Cell, ecut float64) (*Grid, error) {
	if ecut <= 0 {
		return nil, fmt.Errorf("grid: non-positive cutoff %g", ecut)
	}
	g := &Grid{Cell: cell, Ecut: ecut}
	gmax := math.Sqrt(2 * ecut)
	for d := 0; d < 3; d++ {
		b := 2 * math.Pi / cell.L[d]
		mmax := int(gmax / b)
		g.N[d] = fourier.NextFast(2*mmax + 1)
		g.ND[d] = fourier.NextFast(4*mmax + 1)
		// Keep the dense box an even refinement when possible so that
		// restriction/prolongation stay exact.
		if g.ND[d] < 2*g.N[d] {
			g.ND[d] = fourier.NextFast(2 * g.N[d])
		}
	}
	g.NTot = g.N[0] * g.N[1] * g.N[2]
	g.NDTot = g.ND[0] * g.ND[1] * g.ND[2]
	var err error
	if g.Plan, err = fourier.NewPlan3(g.N[0], g.N[1], g.N[2]); err != nil {
		return nil, err
	}
	if g.PlanD, err = fourier.NewPlan3(g.ND[0], g.ND[1], g.ND[2]); err != nil {
		return nil, err
	}
	g.buildSphere()
	g.buildDenseG()
	return g, nil
}

// MustNew is New that panics on error.
func MustNew(cell *lattice.Cell, ecut float64) *Grid {
	g, err := New(cell, ecut)
	if err != nil {
		panic(err)
	}
	return g
}

// millerFromIndex maps FFT index k in [0,n) to the signed Miller index.
func millerFromIndex(k, n int) int {
	if k <= n/2 {
		return k
	}
	return k - n
}

// indexFromMiller maps a signed Miller index to the FFT index in [0,n).
func indexFromMiller(m, n int) int {
	if m < 0 {
		return m + n
	}
	return m
}

func (g *Grid) buildSphere() {
	b := [3]float64{
		2 * math.Pi / g.Cell.L[0],
		2 * math.Pi / g.Cell.L[1],
		2 * math.Pi / g.Cell.L[2],
	}
	for ix := 0; ix < g.N[0]; ix++ {
		mx := millerFromIndex(ix, g.N[0])
		gx := float64(mx) * b[0]
		for iy := 0; iy < g.N[1]; iy++ {
			my := millerFromIndex(iy, g.N[1])
			gy := float64(my) * b[1]
			for iz := 0; iz < g.N[2]; iz++ {
				mz := millerFromIndex(iz, g.N[2])
				gz := float64(mz) * b[2]
				g2 := gx*gx + gy*gy + gz*gz
				if g2/2 > g.Ecut {
					continue
				}
				g.SphereIdx = append(g.SphereIdx, (ix*g.N[1]+iy)*g.N[2]+iz)
				dx := indexFromMiller(mx, g.ND[0])
				dy := indexFromMiller(my, g.ND[1])
				dz := indexFromMiller(mz, g.ND[2])
				g.SphereIdxD = append(g.SphereIdxD, (dx*g.ND[1]+dy)*g.ND[2]+dz)
				g.GVec = append(g.GVec, [3]float64{gx, gy, gz})
				g.G2 = append(g.G2, g2)
				g.MillerIdx = append(g.MillerIdx, [3]int{mx, my, mz})
			}
		}
	}
	g.NG = len(g.SphereIdx)
}

func (g *Grid) buildDenseG() {
	g.G2Dense = make([]float64, g.NDTot)
	g.GVecDense = make([][3]float64, g.NDTot)
	b := [3]float64{
		2 * math.Pi / g.Cell.L[0],
		2 * math.Pi / g.Cell.L[1],
		2 * math.Pi / g.Cell.L[2],
	}
	idx := 0
	for ix := 0; ix < g.ND[0]; ix++ {
		gx := float64(millerFromIndex(ix, g.ND[0])) * b[0]
		for iy := 0; iy < g.ND[1]; iy++ {
			gy := float64(millerFromIndex(iy, g.ND[1])) * b[1]
			for iz := 0; iz < g.ND[2]; iz++ {
				gz := float64(millerFromIndex(iz, g.ND[2])) * b[2]
				g.G2Dense[idx] = gx*gx + gy*gy + gz*gz
				g.GVecDense[idx] = [3]float64{gx, gy, gz}
				idx++
			}
		}
	}
}

// Volume returns the cell volume.
func (g *Grid) Volume() float64 { return g.Cell.Volume() }

// DV returns the real-space volume element of the dense grid.
func (g *Grid) DV() float64 { return g.Volume() / float64(g.NDTot) }

// DVWave returns the real-space volume element of the wavefunction grid.
func (g *Grid) DVWave() float64 { return g.Volume() / float64(g.NTot) }

// ToReal transforms sphere coefficients c (length NG) to real-space values
// psi(r) on the wavefunction box (length NTot): psi = (1/sqrt(Omega)) *
// sum_G c_G exp(iG.r). box is overwritten.
func (g *Grid) ToReal(box []complex128, c []complex128) {
	g.scatterAndTransform(box, c, g.SphereIdx, g.Plan, g.NTot)
}

// ToRealDense is ToReal onto the dense box (zero padding in G space),
// used when accumulating the charge density.
func (g *Grid) ToRealDense(box []complex128, c []complex128) {
	g.scatterAndTransform(box, c, g.SphereIdxD, g.PlanD, g.NDTot)
}

func (g *Grid) scatterAndTransform(box, c []complex128, idx []int, plan *fourier.Plan3, ntot int) {
	if len(box) != ntot || len(c) != g.NG {
		panic("grid: ToReal buffer size mismatch")
	}
	for i := range box {
		box[i] = 0
	}
	for s, k := range idx {
		box[k] = c[s]
	}
	// Unnormalized exp(+iG.r) synthesis = N * normalized inverse.
	plan.Inverse(box, box)
	scale := complex(float64(ntot)/math.Sqrt(g.Volume()), 0)
	for i := range box {
		box[i] *= scale
	}
}

// FromReal projects real-space values on the wavefunction box back onto the
// sphere coefficients: c_G = (sqrt(Omega)/NTot) * Forward(psi)[G]. It is the
// exact inverse of ToReal. box is destroyed.
func (g *Grid) FromReal(c []complex128, box []complex128) {
	if len(box) != g.NTot || len(c) != g.NG {
		panic("grid: FromReal buffer size mismatch")
	}
	g.Plan.Forward(box, box)
	scale := complex(math.Sqrt(g.Volume())/float64(g.NTot), 0)
	for s, k := range g.SphereIdx {
		c[s] = box[k] * scale
	}
}

// ToRealSerial is ToReal without worker-pool parallelism, for callers that
// run many transforms concurrently (one band per goroutine). FFT scratch
// comes from the plan's pool; steady state allocates nothing.
func (g *Grid) ToRealSerial(box []complex128, c []complex128) {
	ws := g.Plan.CheckoutWorkspace()
	g.ToRealSerialWS(box, c, ws)
	g.Plan.ReturnWorkspace(ws)
}

// ToRealSerialWS is ToRealSerial with caller-owned FFT scratch (from
// Plan.NewWorkspace), for hot loops that bind one workspace per worker.
// The 1/sqrt(Omega) normalization is folded into the sphere scatter and the
// synthesis runs unnormalized, avoiding two extra passes over the box.
func (g *Grid) ToRealSerialWS(box []complex128, c []complex128, ws *fourier.Workspace3) {
	if len(box) != g.NTot || len(c) != g.NG {
		panic("grid: ToRealSerial buffer size mismatch")
	}
	for i := range box {
		box[i] = 0
	}
	scale := complex(1/math.Sqrt(g.Volume()), 0)
	for s, k := range g.SphereIdx {
		box[k] = c[s] * scale
	}
	// Unnormalized exp(+iG.r) synthesis; the usual 1/N of the inverse and
	// the N of the synthesis cancel.
	g.Plan.RawSerialWS(box, box, true, ws)
}

// FromRealSerial is FromReal without worker-pool parallelism.
func (g *Grid) FromRealSerial(c []complex128, box []complex128) {
	ws := g.Plan.CheckoutWorkspace()
	g.FromRealSerialWS(c, box, ws)
	g.Plan.ReturnWorkspace(ws)
}

// FromRealSerialWS is FromRealSerial with caller-owned FFT scratch. The
// sqrt(Omega)/N normalization is applied only on the NG sphere entries
// during the gather, never as a full-box pass.
func (g *Grid) FromRealSerialWS(c []complex128, box []complex128, ws *fourier.Workspace3) {
	if len(box) != g.NTot || len(c) != g.NG {
		panic("grid: FromRealSerial buffer size mismatch")
	}
	g.Plan.RawSerialWS(box, box, false, ws)
	scale := complex(math.Sqrt(g.Volume())/float64(g.NTot), 0)
	for s, k := range g.SphereIdx {
		c[s] = box[k] * scale
	}
}

// ToRealSlabWS is ToRealSerialWS with the real-space box in the
// lane-blocked SoA layout (internal/lanes): sphere coefficients scatter
// straight into the split re/im arrays and the synthesis runs through the
// slab FFT passes, so downstream SoA consumers (the Fock contraction) never
// re-interleave.
func (g *Grid) ToRealSlabWS(box lanes.Slab, c []complex128, ws *fourier.Workspace3) {
	if box.Len() != g.NTot || len(c) != g.NG {
		panic("grid: ToRealSlab buffer size mismatch")
	}
	box.Zero()
	scale := 1 / math.Sqrt(g.Volume())
	for s, k := range g.SphereIdx {
		box.Re[k] = real(c[s]) * scale
		box.Im[k] = imag(c[s]) * scale
	}
	g.Plan.RawSlabWS(box, box, true, ws)
}

// FromRealSlabWS is FromRealSerialWS over a SoA box. The box is consumed
// (transformed in place).
func (g *Grid) FromRealSlabWS(c []complex128, box lanes.Slab, ws *fourier.Workspace3) {
	if box.Len() != g.NTot || len(c) != g.NG {
		panic("grid: FromRealSlab buffer size mismatch")
	}
	g.Plan.RawSlabWS(box, box, false, ws)
	scale := math.Sqrt(g.Volume()) / float64(g.NTot)
	for s, k := range g.SphereIdx {
		c[s] = complex(box.Re[k]*scale, box.Im[k]*scale)
	}
}

// DenseForward computes the Fourier coefficients f_G of a real-space dense
// field: f_G = Forward(f)/NDTot, so that f(r) = sum_G f_G exp(iG.r).
// src is real-valued data stored as complex; dst may alias src.
func (g *Grid) DenseForward(dst, src []complex128) {
	if len(dst) != g.NDTot || len(src) != g.NDTot {
		panic("grid: DenseForward buffer size mismatch")
	}
	g.PlanD.Forward(dst, src)
	scale := complex(1/float64(g.NDTot), 0)
	parallel.ForBlock(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] *= scale
		}
	})
}

// DenseInverse synthesizes a real-space dense field from Fourier
// coefficients: f(r) = sum_G f_G exp(iG.r). dst may alias src.
func (g *Grid) DenseInverse(dst, src []complex128) {
	if len(dst) != g.NDTot || len(src) != g.NDTot {
		panic("grid: DenseInverse buffer size mismatch")
	}
	g.PlanD.Inverse(dst, src)
	scale := complex(float64(g.NDTot), 0)
	parallel.ForBlock(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] *= scale
		}
	})
}

// RestrictDenseToWave Fourier-interpolates a real-space field from the dense
// box onto the wavefunction box (truncation of high-G components). Used to
// apply the self-consistent potential, computed on the dense grid, to
// orbitals represented on the coarser wavefunction grid.
func (g *Grid) RestrictDenseToWave(dst, srcDense []complex128) {
	if len(dst) != g.NTot || len(srcDense) != g.NDTot {
		panic("grid: RestrictDenseToWave buffer size mismatch")
	}
	work := make([]complex128, g.NDTot)
	g.DenseForward(work, srcDense)
	for i := range dst {
		dst[i] = 0
	}
	// Copy every coarse-box G from the dense box; every Miller index
	// representable on the coarse box exists on the (finer) dense box.
	for ix := 0; ix < g.N[0]; ix++ {
		dx := indexFromMiller(millerFromIndex(ix, g.N[0]), g.ND[0])
		for iy := 0; iy < g.N[1]; iy++ {
			dy := indexFromMiller(millerFromIndex(iy, g.N[1]), g.ND[1])
			for iz := 0; iz < g.N[2]; iz++ {
				dz := indexFromMiller(millerFromIndex(iz, g.N[2]), g.ND[2])
				dst[(ix*g.N[1]+iy)*g.N[2]+iz] = work[(dx*g.ND[1]+dy)*g.ND[2]+dz]
			}
		}
	}
	// Synthesize on the wavefunction box.
	g.Plan.Inverse(dst, dst)
	scale := complex(float64(g.NTot), 0)
	for i := range dst {
		dst[i] *= scale
	}
}

// WavePointPositions returns the Cartesian coordinates of wavefunction-box
// grid points, in box linear-index order. Used by the real-space nonlocal
// projectors.
func (g *Grid) WavePointPositions() [][3]float64 {
	pos := make([][3]float64, g.NTot)
	idx := 0
	for ix := 0; ix < g.N[0]; ix++ {
		x := float64(ix) / float64(g.N[0]) * g.Cell.L[0]
		for iy := 0; iy < g.N[1]; iy++ {
			y := float64(iy) / float64(g.N[1]) * g.Cell.L[1]
			for iz := 0; iz < g.N[2]; iz++ {
				z := float64(iz) / float64(g.N[2]) * g.Cell.L[2]
				pos[idx] = [3]float64{x, y, z}
				idx++
			}
		}
	}
	return pos
}
