// Flight-recorder integration tests: a real 2-rank hybrid ACE+MTS
// trajectory through sim.Run with tracing on must yield a Chrome trace
// whose per-rank span timelines cover (nearly) all of the measured wall
// time, and Result aggregates that agree with the comm ledgers. This is
// the acceptance gate for the observability layer: if instrumentation
// misses a hot phase, coverage drops below the bar and this test names
// the gap before a human stares at a half-empty timeline.
package ptdft_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"ptdft/internal/sim"
	"ptdft/internal/trace"
)

// tracedSpec is the smallest trajectory that exercises every traced
// subsystem at once: hybrid exchange (fock spans), ACE (build/apply),
// MTS cadence, and 2-rank distribution (wait/xfer/steal spans).
func tracedSpec() sim.Spec {
	return sim.Spec{
		Cells: [3]int{1, 1, 1}, Ecut: 2, Method: "ptcn",
		DtAs: 24, Steps: 4, Kick: 0.02, Seed: 1234,
		Hybrid: true, ACE: true, MTS: 2, Ranks: 2, Exchange: "overlap",
	}
}

func TestTraceCoverageDistributedHybrid(t *testing.T) {
	spec := tracedSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	res, err := sim.Run(&spec, sim.Options{Trace: rec})
	if err != nil {
		t.Fatal(err)
	}

	// The folded aggregates must be populated and mutually consistent.
	if res.RankSeconds <= 0 {
		t.Errorf("RankSeconds = %v, want > 0", res.RankSeconds)
	}
	if res.Comm == nil {
		t.Fatal("Comm ledgers missing on a distributed run")
	}
	if res.BytesMoved <= 0 || res.BytesMoved != res.Comm.TotalBytes() {
		t.Errorf("BytesMoved = %d, Comm.TotalBytes = %d; want equal and > 0",
			res.BytesMoved, res.Comm.TotalBytes())
	}
	if len(res.PhaseSeconds) == 0 {
		t.Error("PhaseSeconds empty")
	}
	for _, phase := range []string{"step", "exchange", "ace_build", "ace_apply"} {
		if res.PhaseSeconds[phase] <= 0 {
			t.Errorf("phase %q missing from breakdown %v", phase, res.PhaseSeconds)
		}
	}

	// Every rank's timeline must cover >= 95% of its extent: the step
	// spans alone guarantee this (phases nest inside them), so a gap
	// means a driver stopped opening step spans somewhere.
	cov := rec.Coverage()
	if len(cov) != spec.Ranks {
		t.Fatalf("coverage over %d tracks, want %d: %v", len(cov), spec.Ranks, cov)
	}
	for id, c := range cov {
		if c < 0.95 {
			t.Errorf("rank %d coverage %.3f < 0.95", id, c)
		}
	}
}

// TestTraceChromeExportWellFormed re-parses the emitted Chrome trace of
// a real run and checks the structural contract the viewers (and
// scripts/tracecheck.sh) rely on.
func TestTraceChromeExportWellFormed(t *testing.T) {
	spec := tracedSpec()
	rec := trace.NewRecorder()
	if _, err := sim.Run(&spec, sim.Options{Trace: rec}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	meta := map[int]bool{}
	spans := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" || ev.Args["name"] == "" {
				t.Errorf("malformed metadata event %+v", ev)
			}
			meta[ev.Tid] = true
		case "X":
			if ev.Name == "" || ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("malformed span event %+v", ev)
			}
			if !meta[ev.Tid] {
				t.Errorf("span on tid %d before its thread_name metadata", ev.Tid)
			}
			spans++
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if len(meta) != 2 {
		t.Errorf("got %d thread_name records, want 2 (one per rank)", len(meta))
	}
	if spans == 0 {
		t.Error("no complete (ph=X) span events in the trace")
	}
}
