// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus real-kernel benchmarks and the ablation studies
// DESIGN.md calls out (exchange communication strategies, ACE compression,
// single-precision MPI). The Summit-scale experiments evaluate the
// calibrated model (internal/perf); the Real* benchmarks execute the
// actual numerical kernels at laptop scale.
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkFig6 -v
package ptdft_test

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"ptdft/internal/core"
	"ptdft/internal/dist"
	"ptdft/internal/fock"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/ion"
	"ptdft/internal/lanes"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/mixing"
	"ptdft/internal/mpi"
	"ptdft/internal/parallel"
	"ptdft/internal/perf"
	"ptdft/internal/potential"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/trace"
	"ptdft/internal/units"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// ---------------------------------------------------------------------------
// Shared laptop-scale fixture: a converged Si8 ground state.

var (
	fixOnce sync.Once
	fixG    *grid.Grid
	fixPsi  []complex128
	fixNB   int
)

func siPots() map[int]*pseudo.Potential {
	return map[int]*pseudo.Potential{0: pseudo.SiliconAH()}
}

func buildFixture() {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	fixG = grid.MustNew(cell, 3)
	fixNB = cell.NumBands()
	h := hamiltonian.New(fixG, siPots(), hamiltonian.Config{})
	res, err := scf.GroundState(fixG, h, fixNB, scf.Defaults())
	if err != nil {
		panic(err)
	}
	fixPsi = res.Psi
}

func fixture(b *testing.B) (*grid.Grid, []complex128, int) {
	b.Helper()
	fixOnce.Do(buildFixture)
	return fixG, wavefunc.Clone(fixPsi), fixNB
}

// ---------------------------------------------------------------------------
// Table 1: component wall-clock times across GPU counts.

func BenchmarkTable1ComponentTimes(b *testing.B) {
	m := perf.New(perf.Reference)
	var sink float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range perf.GPUCounts {
			br := m.SCF(p)
			sink += br.PerSCF + m.StepTotal(p) + m.Speedup(p)
		}
	}
	_ = sink
	b.ReportMetric(m.StepTotal(768), "s/step@768GPU")
	b.ReportMetric(m.Speedup(768), "speedup@768GPU")
	b.ReportMetric(m.StepTotal(768)/3600*20, "h/fs@768GPU") // 20 steps of 50 as per fs
}

// Table 2: MPI / memcpy / computation breakdown.

func BenchmarkTable2CommBreakdown(b *testing.B) {
	m := perf.New(perf.Reference)
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, p := range perf.GPUCounts {
			c := m.Comm(p)
			sink += c.MPITotal + c.ComputeTime
		}
	}
	_ = sink
	c := m.Comm(3072)
	b.ReportMetric(c.BcastTime, "bcast_s@3072GPU")
	b.ReportMetric(c.MPITotal/c.Total*100, "mpi_pct@3072GPU")
}

// Fig. 3: Fock exchange optimization stages at 72 GPUs.

func BenchmarkFig3FockOptimizationStages(b *testing.B) {
	m := perf.New(perf.Reference)
	var stages []perf.FockStage
	for i := 0; i < b.N; i++ {
		stages = m.FockStages(72)
	}
	b.ReportMetric(stages[0].Seconds/stages[len(stages)-1].Seconds, "cpu_gpu_ratio")
	b.ReportMetric(stages[len(stages)-1].Seconds, "final_s")
}

// Fig. 6: RK4 vs PT-CN per 50 as (Summit model).

func BenchmarkFig6PTCNvsRK4(b *testing.B) {
	m := perf.New(perf.Reference)
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, p := range []int{36, 72, 144, 288, 384, 768} {
			sink += m.RK4StepTotal(p) / m.StepTotal(p)
		}
	}
	_ = sink
	b.ReportMetric(m.PTCNvsRK4(36), "ratio@36GPU")
	b.ReportMetric(m.PTCNvsRK4(768), "ratio@768GPU")
}

// Fig. 6 (real physics): the same comparison executed on Si8. One PT-CN
// step of 48 as versus the equivalent span of RK4 steps.

func BenchmarkFig6RealPTCNvsRK4(b *testing.B) {
	g, psi0, nb := fixture(b)
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: kick}
	dt := 2.0 // au, ~48 as
	b.Run("PTCN", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := core.NewPTCN(sys, core.DefaultPTCN())
			if _, _, err := p.Step(wavefunc.Clone(psi0), dt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RK4same50as", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := core.NewRK4(sys)
			cur := wavefunc.Clone(psi0)
			var err error
			for s := 0; s < 80; s++ { // 80 x 0.025 au = the same 2.0 au
				if cur, _, err = r.Step(cur, 0.025); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// Fig. 7: strong scaling of total time and components.

func BenchmarkFig7StrongScaling(b *testing.B) {
	m := perf.New(perf.Reference)
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, p := range perf.GPUCounts {
			br := m.SCF(p)
			sink += br.FockComp + br.ResidComp + br.AMComp + br.DensityComp
		}
	}
	_ = sink
	t36, t384 := m.StepTotal(36), m.StepTotal(384)
	b.ReportMetric(t36/t384/(384.0/36.0)*100, "parallel_eff_pct@384")
}

// Fig. 8: weak scaling 48..1536 atoms.

func BenchmarkFig8WeakScaling(b *testing.B) {
	natoms := []int{48, 96, 192, 384, 768, 1536}
	var pts []perf.WeakScalingPoint
	for i := 0; i < b.N; i++ {
		pts = perf.WeakScaling(natoms)
	}
	for _, pt := range pts {
		if pt.Natom == 192 {
			b.ReportMetric(pt.Time, "si192_s_per_50as")
		}
	}
	b.ReportMetric(perf.GrowthExponent(pts[len(pts)-2], pts[len(pts)-1]), "final_exponent")
}

// Fig. 9: per-SCF component times.

func BenchmarkFig9SCFComponents(b *testing.B) {
	m := perf.New(perf.Reference)
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, p := range []int{36, 72, 144, 288, 768} {
			br := m.SCF(p)
			sink += br.HPsiTotal + br.ResidTotal + br.DensityTotal + br.AMTotal + br.Others
		}
	}
	_ = sink
	b.ReportMetric(m.SCF(768).Others/m.SCF(768).PerSCF*100, "others_pct@768")
	b.ReportMetric(m.SCF(36).Others/m.SCF(36).PerSCF*100, "others_pct@36")
}

// Fig. 10: communication class breakdown.

func BenchmarkFig10CommBreakdown(b *testing.B) {
	m := perf.New(perf.Reference)
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, p := range perf.GPUCounts {
			c := m.Comm(p)
			sink += c.BcastTime + c.MemcpyTime + c.A2AVTime + c.AllreduceTime
		}
	}
	_ = sink
	b.ReportMetric(m.Comm(768).BcastTime, "bcast_s@768")
	b.ReportMetric(m.Comm(768).ComputeTime, "compute_s@768")
}

// Section 6 power comparison.

func BenchmarkPowerComparison(b *testing.B) {
	m := perf.New(perf.Reference)
	var pc float64
	for i := 0; i < b.N; i++ {
		c := m.M.ComparePower(3072, 72, m.CPUStepSeconds, m.StepTotal(72))
		pc = c.SpeedupAtEqualPower
	}
	b.ReportMetric(pc, "speedup_equal_power")
}

// Fig. 4b: the 380 nm laser pulse evaluation cost.

func BenchmarkLaserPulse(b *testing.B) {
	p := laser.New380nm(0.01, 600, 150)
	var sink float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := p.Avec(float64(i%1200) + 0.5)
		sink += a[2]
	}
	_ = sink
}

// ---------------------------------------------------------------------------
// Real kernel benchmarks (actual numerics at Si8 scale).
//
// The Fock/FFT benchmarks below write their measurements into
// BENCH_fock.json at the module root (go test -bench 'Fock|FFT' -run '^$'),
// seeding the repository's benchmark trajectory: each record is keyed by
// (benchmark, PTDFT_BENCH_LABEL), so baselines recorded before an
// optimization stay in the file next to the numbers after it.

// recordBench upserts this benchmark's measurement into BENCH_fock.json.
// Call it after the timed loop; allocsPerOp < 0 means "not measured".
func recordBench(b *testing.B, g *grid.Grid, nb int, allocsPerOp float64) {
	b.Helper()
	if b.N == 0 {
		return
	}
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if err := perf.RecordMeasurement("BENCH_fock.json", b.Name(), nsPerOp, allocsPerOp, g.N, nb, parallel.MaxWorkers()); err != nil {
		b.Logf("bench record not written: %v", err)
	}
}

// processAllocs returns the process-wide heap allocation count (the Mallocs
// delta across all goroutines) incurred by one execution of fn. Used for
// ops that fan out across rank goroutines, where the per-goroutine view of
// testing.AllocsPerRun's averaging window is too coarse to fence manually.
func processAllocs(fn func()) float64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs - before.Mallocs)
}

// distAllocs measures the per-op process-wide allocations of a collective:
// every rank calls it with the same n and body, rank 0 snapshots the global
// malloc counter around the barrier-fenced loop and gets the per-op delta,
// the other ranks get -1. The one unmeasured leading call warms any
// lazily-grown workspace so the fenced loop sees the steady state.
func distAllocs(c *mpi.Comm, n int, body func()) float64 {
	body()
	c.Barrier()
	var before, after runtime.MemStats
	if c.Rank() == 0 {
		runtime.ReadMemStats(&before)
	}
	c.Barrier()
	for i := 0; i < n; i++ {
		body()
	}
	c.Barrier()
	if c.Rank() != 0 {
		return -1
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(n)
}

func BenchmarkRealFockApplyAllBands(b *testing.B) {
	g, psi, nb := fixture(b)
	op := fock.NewOperator(g, xc.HSE06(), psi, nb)
	out := make([]complex128, nb*g.NG)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range out {
			out[k] = 0
		}
		op.Apply(out, psi, nb)
	}
	b.StopTimer()
	// Apply on the reference set runs the symmetric path: nb(nb+1)/2 pairs.
	b.ReportMetric(float64(nb*(nb+1)/2), "fft_pairs/op")
	allocs := testing.AllocsPerRun(1, func() { op.Apply(out, psi, nb) })
	recordBench(b, g, nb, allocs)
}

// BenchmarkFockApplyGeneric is the generic (non-reference) application of
// the exchange to a single band: nb fused Poisson contractions with no
// symmetry to exploit - the pure hot-path number.
func BenchmarkFockApplyGeneric(b *testing.B) {
	g, psi, nb := fixture(b)
	op := fock.NewOperator(g, xc.HSE06(), psi, nb)
	x := wavefunc.Random(g, 1, 99)
	out := make([]complex128, g.NG)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range out {
			out[k] = 0
		}
		op.Apply(out, x, 1)
	}
	b.StopTimer()
	allocs := testing.AllocsPerRun(1, func() { op.Apply(out, x, 1) })
	recordBench(b, g, nb, allocs)
}

// BenchmarkFockApplyToReference is the symmetry-halved application to the
// operator's own orbital set - the dominant call of the PT-CN refresh.
func BenchmarkFockApplyToReference(b *testing.B) {
	g, psi, nb := fixture(b)
	op := fock.NewOperator(g, xc.HSE06(), psi, nb)
	out := make([]complex128, nb*g.NG)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range out {
			out[k] = 0
		}
		op.ApplyToReference(out)
	}
	b.StopTimer()
	allocs := testing.AllocsPerRun(1, func() { op.ApplyToReference(out) })
	recordBench(b, g, nb, allocs)
}

// BenchmarkFockEnergy streams the exchange energy on the reference set.
func BenchmarkFockEnergy(b *testing.B) {
	g, psi, nb := fixture(b)
	op := fock.NewOperator(g, xc.HSE06(), psi, nb)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += op.Energy(psi, nb)
	}
	b.StopTimer()
	_ = sink
	allocs := testing.AllocsPerRun(1, func() { _ = op.Energy(psi, nb) })
	recordBench(b, g, nb, allocs)
}

// BenchmarkFFTPoissonSolve times one fused Poisson round trip on the
// wavefunction box - the atom the nb^2 exchange cost is built from. Since
// PR 8 the production solve runs over the lane-blocked SoA layout
// (PoissonSlabWS); this measures exactly that path.
func BenchmarkFFTPoissonSolve(b *testing.B) {
	g, psi, nb := fixture(b)
	kernel := fock.BuildKernel(g, xc.HSE06())
	buf := lanes.New(g.NTot)
	ws := g.Plan.NewWorkspace()
	g.ToRealSlabWS(buf, psi[:g.NG], ws)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Plan.PoissonSlabWS(buf, kernel, ws)
	}
	b.StopTimer()
	allocs := testing.AllocsPerRun(1, func() { g.Plan.PoissonSlabWS(buf, kernel, ws) })
	recordBench(b, g, nb, allocs)
}

// BenchmarkFFTSerial3D times one serial 3D transform of the wavefunction
// box through the plan-owned workspace path.
func BenchmarkFFTSerial3D(b *testing.B) {
	g, psi, _ := fixture(b)
	buf := make([]complex128, g.NTot)
	g.ToRealSerial(buf, psi[:g.NG])
	ws := g.Plan.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Plan.ApplySerialWS(buf, buf, i%2 == 0, ws)
	}
	b.StopTimer()
	allocs := testing.AllocsPerRun(1, func() { g.Plan.ApplySerialWS(buf, buf, false, ws) })
	recordBench(b, g, 1, allocs)
}

func BenchmarkRealACEApply(b *testing.B) {
	g, psi, nb := fixture(b)
	op := fock.NewOperator(g, xc.HSE06(), psi, nb)
	ace, err := fock.NewACE(op, psi, nb)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]complex128, nb*g.NG)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range out {
			out[k] = 0
		}
		ace.Apply(out, psi, nb)
	}
}

func BenchmarkRealHamiltonianApply(b *testing.B) {
	g, psi, nb := fixture(b)
	for _, mode := range []struct {
		name   string
		hybrid bool
	}{{"semilocal", false}, {"hybrid", true}} {
		b.Run(mode.name, func(b *testing.B) {
			h := hamiltonian.New(g, siPots(), hamiltonian.Config{Hybrid: mode.hybrid, Params: xc.HSE06()})
			rho := potential.Density(g, psi, nb, 2)
			h.UpdatePotential(rho)
			if mode.hybrid {
				h.SetFockOrbitals(psi, nb)
			}
			out := make([]complex128, nb*g.NG)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Apply(out, psi, nb)
			}
		})
	}
}

func BenchmarkRealDensity(b *testing.B) {
	g, psi, nb := fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		potential.Density(g, psi, nb, 2)
	}
}

func BenchmarkRealOrthogonalization(b *testing.B) {
	g, psi, nb := fixture(b)
	work := make([]complex128, len(psi))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(work, psi)
		if err := wavefunc.Orthonormalize(work, nb, g.NG); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealAndersonMixing(b *testing.B) {
	g, psi, nb := fixture(b)
	f := make([]complex128, len(psi))
	for i := range f {
		f[i] = psi[i] * complex(0.01, 0.005)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm := mixing.NewBandMixer(nb, g.NG, 20, 0.4)
		x := psi
		for it := 0; it < 5; it++ {
			x = bm.Mix(x, f)
		}
	}
}

func BenchmarkRealPTCNStep(b *testing.B) {
	g, psi0, nb := fixture(b)
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	for _, mode := range []struct {
		name   string
		hybrid bool
	}{{"semilocal", false}, {"hybrid", true}} {
		b.Run(mode.name, func(b *testing.B) {
			h := hamiltonian.New(g, siPots(), hamiltonian.Config{Hybrid: mode.hybrid, Params: xc.HSE06()})
			sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: kick}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := core.NewPTCN(sys, core.DefaultPTCN())
				if _, _, err := p.Step(wavefunc.Clone(psi0), 1.0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: the three exchange communication strategies of section 3.2
// (sequential broadcast, overlapped broadcast, round-robin) and the
// single-precision payload option, on real distributed executions.

func BenchmarkRealDistributedExchange(b *testing.B) {
	g, psi, nb := fixture(b)
	kernel := fock.BuildKernel(g, xc.HSE06())
	cases := []struct {
		name string
		opt  dist.ExchangeOptions
	}{
		{"bcast", dist.ExchangeOptions{Strategy: dist.BcastSequential}},
		{"bcast_overlap", dist.ExchangeOptions{Strategy: dist.BcastOverlapped}},
		{"roundrobin", dist.ExchangeOptions{Strategy: dist.RoundRobin}},
		{"steal", dist.ExchangeOptions{Strategy: dist.Steal}},
		{"bcast_singleprec", dist.ExchangeOptions{Strategy: dist.BcastSequential, SinglePrecision: true}},
		{"overlap_singleprec", dist.ExchangeOptions{Strategy: dist.BcastOverlapped, SinglePrecision: true}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mpi.Run(4, func(c *mpi.Comm) {
					d, err := dist.NewCtx(c, g, nb, 2)
					if err != nil {
						panic(err)
					}
					lo, hi := d.BandRange(c.Rank())
					local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
					d.FockExchange(local, local, kernel, 0.25, tc.opt)
				})
			}
		})
	}
}

// Ablation: the distributed ACE compression against the exact distributed
// exchange on real 4-rank executions - the paper's section-1 PT-vs-PT+ACE
// trade-off in wall-clock form, recorded into BENCH_fock.json. "exact" is
// one exact exchange application (what every inner SCF iteration pays on
// the plain PT path), "ace_build" is one collective Xi construction (the
// per-step cost of the held cadence: one exact application plus two
// transposes, an allreduced nb x nb overlap, replicated Cholesky and the
// slab triangular solve), and "ace_apply" is one compressed application
// (what each inner iteration pays once Xi is held: two transposes plus one
// nb x nb allreduce instead of nb broadcasts and nb x nbl Poisson solves).
func BenchmarkDistExchange(b *testing.B) {
	g, psi, nb := fixture(b)
	kernel := fock.BuildKernel(g, xc.HSE06())
	opt := dist.ExchangeOptions{Strategy: dist.BcastOverlapped}
	const ranks = 4
	run := func(b *testing.B, body func(d *dist.Ctx, local []complex128, ex *dist.ExchangeWorkspace)) {
		b.Helper()
		b.ReportAllocs()
		mpi.Run(ranks, func(c *mpi.Comm) {
			d, err := dist.NewCtx(c, g, nb, 2)
			if err != nil {
				panic(err)
			}
			lo, hi := d.BandRange(c.Rank())
			local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
			body(d, local, d.NewExchangeWorkspace())
		})
	}
	b.Run("exact", func(b *testing.B) {
		var allocs float64
		run(b, func(d *dist.Ctx, local []complex128, ex *dist.ExchangeWorkspace) {
			for i := 0; i < b.N; i++ {
				d.FockExchangeWS(local, local, kernel, 0.25, opt, ex)
			}
			if a := distAllocs(d.C, 2, func() { d.FockExchangeWS(local, local, kernel, 0.25, opt, ex) }); a >= 0 {
				allocs = a
			}
		})
		recordBench(b, g, nb, allocs)
	})
	b.Run("ace_build", func(b *testing.B) {
		var allocs float64
		run(b, func(d *dist.Ctx, local []complex128, ex *dist.ExchangeWorkspace) {
			a := d.NewACE()
			for i := 0; i < b.N; i++ {
				if err := a.Rebuild(local, nil, kernel, 0.25, opt, ex); err != nil {
					panic(err)
				}
			}
			if al := distAllocs(d.C, 2, func() {
				if err := a.Rebuild(local, nil, kernel, 0.25, opt, ex); err != nil {
					panic(err)
				}
			}); al >= 0 {
				allocs = al
			}
		})
		recordBench(b, g, nb, allocs)
	})
	b.Run("ace_apply", func(b *testing.B) {
		var allocs float64
		run(b, func(d *dist.Ctx, local []complex128, ex *dist.ExchangeWorkspace) {
			a := d.NewACE()
			if err := a.Rebuild(local, nil, kernel, 0.25, opt, ex); err != nil {
				panic(err)
			}
			out := make([]complex128, len(local))
			for i := 0; i < b.N; i++ {
				a.Apply(out, local)
			}
			if al := distAllocs(d.C, 2, func() { a.Apply(out, local) }); al >= 0 {
				allocs = al
			}
		})
		recordBench(b, g, nb, allocs)
	})
}

// Tentpole ablation (PR 6): straggler resilience of the exchange
// schedules. One op is one collective exact exchange on 8 real ranks with
// rank 0's compute sections stretched 2x by the injected perturbation
// model - the jittered-node scenario the dynamic work queue exists for.
// The static schedules pin a fixed share of the Poisson solves on the slow
// rank and wait for it; under steal the fast ranks claim the chunks the
// straggler never reaches. Recorded into BENCH_fock.json: the trajectory
// test pins steal >= 1.3x faster than the best static strategy under the
// pr6-steal label.
func BenchmarkDistExchangeStraggler(b *testing.B) {
	g, psi, nb := fixture(b)
	kernel := fock.BuildKernel(g, xc.HSE06())
	const ranks = 8
	p := &mpi.Perturb{ComputeScale: func(rank int) float64 {
		if rank == 0 {
			return 2.0
		}
		return 1.0
	}}
	for _, tc := range []struct {
		name string
		opt  dist.ExchangeOptions
	}{
		{"bcast", dist.ExchangeOptions{Strategy: dist.BcastSequential}},
		{"overlap", dist.ExchangeOptions{Strategy: dist.BcastOverlapped}},
		{"roundrobin", dist.ExchangeOptions{Strategy: dist.RoundRobin}},
		{"steal", dist.ExchangeOptions{Strategy: dist.Steal}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			// One worker per rank: the schedule's balance is under
			// measurement, not the thread pool's.
			defer parallel.SetMaxWorkers(parallel.SetMaxWorkers(1))
			b.ReportAllocs()
			var allocs float64
			mpi.RunPerturbed(ranks, p, func(c *mpi.Comm) {
				d, err := dist.NewCtx(c, g, nb, 2)
				if err != nil {
					panic(err)
				}
				lo, hi := d.BandRange(c.Rank())
				local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
				ex := d.NewExchangeWorkspace()
				d.FockExchangeWS(local, local, kernel, 0.25, tc.opt, ex) // warm
				c.Barrier()
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					d.FockExchangeWS(local, local, kernel, 0.25, tc.opt, ex)
				}
				c.Barrier()
				if c.Rank() == 0 {
					b.StopTimer()
				}
				if a := distAllocs(c, 2, func() { d.FockExchangeWS(local, local, kernel, 0.25, tc.opt, ex) }); a >= 0 {
					allocs = a
				}
			})
			recordBench(b, g, nb, allocs)
		})
	}
}

// Scaling curves for the dynamic schedule, recorded into BENCH_fock.json
// alongside the straggler ablation. "strong" applies the exchange to the
// fixed Si8 reference set on growing rank counts; "weak" grows the band
// count with the ranks (nb = 4 x ranks) so the per-rank block stays fixed
// while the global pair work grows - the regime the SC'19 weak-scaling
// figure probes. Both run unperturbed: the number on record is where the
// halved triangle count and the queue overheads leave the dynamic schedule
// relative to the overlapped broadcast when nothing straggles.
func BenchmarkDistExchangeScaling(b *testing.B) {
	g, psi, nb := fixture(b)
	kernel := fock.BuildKernel(g, xc.HSE06())
	runOne := func(b *testing.B, ranks int, block []complex128, bands int, s dist.ExchangeStrategy) {
		b.Helper()
		defer parallel.SetMaxWorkers(parallel.SetMaxWorkers(1))
		opt := dist.ExchangeOptions{Strategy: s}
		b.ReportAllocs()
		var allocs float64
		mpi.Run(ranks, func(c *mpi.Comm) {
			d, err := dist.NewCtx(c, g, bands, 2)
			if err != nil {
				panic(err)
			}
			lo, hi := d.BandRange(c.Rank())
			local := wavefunc.Clone(block[lo*g.NG : hi*g.NG])
			ex := d.NewExchangeWorkspace()
			d.FockExchangeWS(local, local, kernel, 0.25, opt, ex) // warm
			c.Barrier()
			if c.Rank() == 0 {
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				d.FockExchangeWS(local, local, kernel, 0.25, opt, ex)
			}
			c.Barrier()
			if c.Rank() == 0 {
				b.StopTimer()
			}
			if a := distAllocs(c, 2, func() { d.FockExchangeWS(local, local, kernel, 0.25, opt, ex) }); a >= 0 {
				allocs = a
			}
		})
		recordBench(b, g, bands, allocs)
	}
	strategies := []struct {
		name string
		s    dist.ExchangeStrategy
	}{{"overlap", dist.BcastOverlapped}, {"steal", dist.Steal}}
	for _, ranks := range []int{1, 2, 4, 8} {
		for _, st := range strategies {
			ranks, st := ranks, st
			b.Run(fmt.Sprintf("strong_r%d_%s", ranks, st.name), func(b *testing.B) {
				runOne(b, ranks, psi, nb, st.s)
			})
		}
	}
	for _, ranks := range []int{1, 2, 4, 8} {
		wnb := 4 * ranks
		wpsi := wavefunc.Random(g, wnb, 7)
		for _, st := range strategies {
			ranks, st := ranks, st
			b.Run(fmt.Sprintf("weak_r%d_%s", ranks, st.name), func(b *testing.B) {
				runOne(b, ranks, wpsi, wnb, st.s)
			})
		}
	}
}

// Tentpole ablation: multiple time stepping. One op is one full M = 4
// cycle of hybrid PT-CN on 2 real ranks (2 keeps the per-rank exchange
// share dominant at laptop scale; more ranks shrink nbl until transpose
// and semi-local overheads mask the cadence); every step is timed individually
// and the *median* per-step wall time is recorded into BENCH_fock.json -
// the median is the honest MTS number, because an M-cycle is one expensive
// outer step (ACE rebuild) followed by M-1 cheap frozen steps, and the
// typical step is what production throughput is made of. "everystep" is
// the exact-exchange reference every inner iteration of which pays nb
// broadcasts and nb x nbl Poisson solves; "mts4" refreshes the compressed
// operator every 4th step and propagates the rest with the held Xi (two
// transposes plus one nb x nb allreduce per application). "hold1" is the
// -acehold (M = 1) cadence - ACE rebuilt every step - which separates the
// compression's contribution from the cadence's: hold1-vs-everystep
// prices ACE alone, mts4-vs-hold1 the skipped rebuilds.
func BenchmarkMTSStep(b *testing.B) {
	g, psi0, nb := fixture(b)
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	const ranks, cycle = 2, 4
	const dt = 1.0
	for _, mode := range []struct {
		name string
		opt  dist.ExchangeOptions
	}{
		{"everystep", dist.ExchangeOptions{Strategy: dist.BcastOverlapped}},
		{"hold1", dist.ExchangeOptions{Strategy: dist.BcastOverlapped, ACE: true, ACEHoldThroughSCF: true}},
		{"mts4", dist.ExchangeOptions{Strategy: dist.BcastOverlapped, ACE: true, MTSPeriod: 4}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var stepNs []float64
			oneCycle := func() {
				mpi.Run(ranks, func(c *mpi.Comm) {
					d, err := dist.NewCtx(c, g, nb, 2)
					if err != nil {
						panic(err)
					}
					h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
					s := dist.NewPTCNSolver(d, h, xc.HSE06(), true, kick, core.DefaultPTCN(), mode.opt)
					lo, hi := d.BandRange(c.Rank())
					local := wavefunc.Clone(psi0[lo*g.NG : hi*g.NG])
					for step := 0; step < cycle; step++ {
						start := time.Now()
						if local, _, err = s.Step(local, dt); err != nil {
							panic(err)
						}
						if c.Rank() == 0 {
							stepNs = append(stepNs, float64(time.Since(start).Nanoseconds()))
						}
					}
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				oneCycle()
			}
			b.StopTimer()
			med := median(stepNs)
			b.ReportMetric(med, "ns/step-median")
			// Allocations per step, world setup amortized over the cycle -
			// the same granularity as the recorded median step time.
			allocs := processAllocs(oneCycle) / cycle
			if err := perf.RecordMeasurement("BENCH_fock.json", b.Name(), med, allocs, g.N, nb, parallel.MaxWorkers()); err != nil {
				b.Logf("bench record not written: %v", err)
			}
		})
	}
}

// Observability overhead (PR 10): the same hybrid ACE PT-CN step on 2
// real ranks, once with every recording site on the nil disabled path
// ("untraced") and once with a live flight recorder attached to both
// ranks ("traced"). The two arms run identical code - only the recorder
// differs - so the recorded median-step ratio prices the tracing layer
// itself: span begin/end bookkeeping on every step, SCF iteration,
// exchange application, FFT and message. The trajectory check pins the
// enabled overhead at <= 3%; the disabled path is priced separately by
// BenchmarkTraceDisabledPath (zero allocations, sub-ns per site).
func BenchmarkDistStep(b *testing.B) {
	g, psi0, nb := fixture(b)
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	const ranks, cycle = 2, 4
	const dt = 1.0
	opt := dist.ExchangeOptions{Strategy: dist.BcastOverlapped, ACE: true}
	for _, mode := range []struct {
		name   string
		traced bool
	}{
		{"untraced", false},
		{"traced", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var stepNs []float64
			oneCycle := func() {
				// A fresh recorder per cycle bounds the span buffers; the
				// untraced arm passes nil tracks through the same calls.
				var rec *trace.Recorder
				if mode.traced {
					rec = trace.NewRecorder()
				}
				mpi.Run(ranks, func(c *mpi.Comm) {
					c.SetTrace(rec.Track(c.Rank(), fmt.Sprintf("rank %d", c.Rank())))
					d, err := dist.NewCtx(c, g, nb, 2)
					if err != nil {
						panic(err)
					}
					h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
					s := dist.NewPTCNSolver(d, h, xc.HSE06(), true, kick, core.DefaultPTCN(), opt)
					lo, hi := d.BandRange(c.Rank())
					local := wavefunc.Clone(psi0[lo*g.NG : hi*g.NG])
					for step := 0; step < cycle; step++ {
						start := time.Now()
						if local, _, err = s.Step(local, dt); err != nil {
							panic(err)
						}
						if c.Rank() == 0 {
							stepNs = append(stepNs, float64(time.Since(start).Nanoseconds()))
						}
					}
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				oneCycle()
			}
			b.StopTimer()
			med := median(stepNs)
			b.ReportMetric(med, "ns/step-median")
			allocs := processAllocs(oneCycle) / cycle
			if err := perf.RecordMeasurement("BENCH_fock.json", b.Name(), med, allocs, g.N, nb, parallel.MaxWorkers()); err != nil {
				b.Logf("bench record not written: %v", err)
			}
		})
	}
}

// BenchmarkTraceDisabledPath prices one untraced instrumentation site:
// a Begin/End pair on a nil *trace.Track, which is what every recording
// site in the solver and comm layers degenerates to when no recorder is
// attached. The contract the trajectory check pins is zero allocations -
// the whole disabled path is two nil checks.
func BenchmarkTraceDisabledPath(b *testing.B) {
	var tr *trace.Track
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := tr.Begin("step", "step")
		tr.End(ref)
	}
	b.StopTimer()
	allocs := testing.AllocsPerRun(1000, func() {
		ref := tr.Begin("step", "step")
		tr.End(ref)
	})
	if err := perf.RecordMeasurement("BENCH_fock.json", b.Name(), float64(b.Elapsed().Nanoseconds())/float64(b.N), allocs, [3]int{0, 0, 0}, 0, parallel.MaxWorkers()); err != nil {
		b.Logf("bench record not written: %v", err)
	}
}

// Tentpole ablation (PR 5): the Ehrenfest coupled step. One "step" op is
// one full ion step on 2 real ranks - half kick, drift, geometry rebuild
// (projectors + local potential), one coupled hybrid PT-CN electronic
// step, and the closing force build + half kick. One "forces" op is the
// Hellmann-Feynman force assembly alone (local structure-factor gradients
// + nonlocal projector gradients + Ewald, with its collectives). The pair
// prices what ion dynamics adds on top of a bare electronic step: the
// trajectory check pins the force build at a fraction of the coupled
// step, so MD composes with the hybrid cadences instead of dominating
// them.
func BenchmarkEhrenfestStep(b *testing.B) {
	g, psi0, nb := fixture(b)
	const ranks = 2
	pots := siPots()
	newCell := func() *lattice.Cell {
		c := lattice.MustSiliconSupercell(1, 1, 1)
		if err := c.DisplaceAtom(0, [3]float64{0.2, 0, 0}); err != nil {
			panic(err)
		}
		return c
	}
	b.Run("step", func(b *testing.B) {
		b.ReportAllocs()
		var allocs float64
		mpi.Run(ranks, func(c *mpi.Comm) {
			cellR := newCell()
			gR := grid.MustNew(cellR, 3)
			d, err := dist.NewCtx(c, gR, nb, 2)
			if err != nil {
				panic(err)
			}
			h := hamiltonian.New(gR, pots, hamiltonian.Config{IonDynamics: true})
			s := dist.NewPTCNSolver(d, h, xc.HSE06(), true, nil, core.DefaultPTCN(), dist.ExchangeOptions{Strategy: dist.BcastOverlapped})
			lo, hi := d.BandRange(c.Rank())
			de := &ion.DistElectrons{S: s, Local: wavefunc.Clone(psi0[lo*gR.NG : hi*gR.NG]), Pots: pots}
			v, err := ion.NewVerlet(cellR, de, 2.0, 1)
			if err != nil {
				panic(err)
			}
			for i := 0; i < b.N; i++ {
				if err := v.Step(); err != nil {
					panic(err)
				}
			}
			if a := distAllocs(c, 1, func() {
				if err := v.Step(); err != nil {
					panic(err)
				}
			}); a >= 0 {
				allocs = a
			}
		})
		recordBench(b, g, nb, allocs)
	})
	b.Run("forces", func(b *testing.B) {
		b.ReportAllocs()
		var allocs float64
		mpi.Run(ranks, func(c *mpi.Comm) {
			cellR := newCell()
			gR := grid.MustNew(cellR, 3)
			d, err := dist.NewCtx(c, gR, nb, 2)
			if err != nil {
				panic(err)
			}
			h := hamiltonian.New(gR, pots, hamiltonian.Config{IonDynamics: true})
			s := dist.NewPTCNSolver(d, h, xc.HSE06(), true, nil, core.DefaultPTCN(), dist.ExchangeOptions{Strategy: dist.BcastOverlapped})
			lo, hi := d.BandRange(c.Rank())
			de := &ion.DistElectrons{S: s, Local: wavefunc.Clone(psi0[lo*gR.NG : hi*gR.NG]), Pots: pots}
			v, err := ion.NewVerlet(cellR, de, 2.0, 1)
			if err != nil {
				panic(err)
			}
			for i := 0; i < b.N; i++ {
				if err := v.ComputeForces(); err != nil {
					panic(err)
				}
			}
			if a := distAllocs(c, 2, func() {
				if err := v.ComputeForces(); err != nil {
					panic(err)
				}
			}); a >= 0 {
				allocs = a
			}
		})
		recordBench(b, g, nb, allocs)
	})
}

// median returns the middle of a sample (mean of the two middles for even
// counts); 0 for an empty sample.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func BenchmarkRealAlltoallvTranspose(b *testing.B) {
	g, psi, nb := fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mpi.Run(4, func(c *mpi.Comm) {
			d, err := dist.NewCtx(c, g, nb, 2)
			if err != nil {
				panic(err)
			}
			lo, hi := d.BandRange(c.Rank())
			local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
			gd := d.BandToG(local, false)
			d.GToBand(gd, false)
		})
	}
}

func BenchmarkRealGroundStateSCF(b *testing.B) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
		if _, err := scf.GroundState(g, h, cell.NumBands(), scf.Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: Anderson mixing history depth. The paper uses 20 copies of the
// wavefunctions; shallower histories need more SCF iterations per PT-CN
// step. The custom metric reports iterations to convergence.

func BenchmarkAblationAndersonHistory(b *testing.B) {
	g, psi0, nb := fixture(b)
	kick := &laser.Kick{K: 0.05, Pol: [3]float64{0, 0, 1}}
	for _, hist := range []int{2, 5, 10, 20} {
		b.Run(history(hist), func(b *testing.B) {
			h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
			sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: kick}
			opt := core.DefaultPTCN()
			opt.MixHistory = hist
			var iters int
			for i := 0; i < b.N; i++ {
				p := core.NewPTCN(sys, opt)
				_, stats, err := p.Step(wavefunc.Clone(psi0), 2.0)
				if err != nil {
					b.Fatal(err)
				}
				iters = stats.SCFIterations
			}
			b.ReportMetric(float64(iters), "scf_iters")
		})
	}
}

func history(n int) string {
	return map[int]string{2: "hist2", 5: "hist5", 10: "hist10", 20: "hist20"}[n]
}

// Ablation: PT-CN propagation with the ACE-compressed exchange versus the
// exact operator (the paper found plain PT faster on GPUs; ACE shines on
// CPUs where FFTs are relatively costlier - ref [22]).

func BenchmarkAblationACEPropagation(b *testing.B) {
	g, psi0, nb := fixture(b)
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	for _, mode := range []struct {
		name string
		ace  bool
	}{{"exact_exchange", false}, {"ace_compressed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			h := hamiltonian.New(g, siPots(), hamiltonian.Config{Hybrid: true, UseACE: mode.ace, Params: xc.HSE06()})
			sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: kick}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := core.NewPTCN(sys, core.DefaultPTCN())
				if _, _, err := p.Step(wavefunc.Clone(psi0), 1.0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Sanity: the bench harness exposes the paper's headline in real units.

func BenchmarkHeadline15HoursPerFs(b *testing.B) {
	m := perf.New(perf.Reference)
	var hoursPerFs float64
	for i := 0; i < b.N; i++ {
		stepsPerFs := 1000.0 / 50.0 // 50 as steps
		hoursPerFs = m.StepTotal(768) * stepsPerFs / 3600
	}
	// Paper abstract: "the wall clock time is only 1.5 hours per
	// femtosecond" on 768 GPUs.
	b.ReportMetric(hoursPerFs, "hours_per_fs@768GPU")
	_ = units.AttosecondPerAU
}
