// Fault-tolerance acceptance test: the resilient supervisor on the full
// hybrid MTS+ACE pipeline must hide rank crashes completely - the
// recovered trajectory is the uninterrupted one to 1e-10, for a crash of
// every rank index at a fuzzed step.
package ptdft_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"ptdft/internal/checkpoint"
	"ptdft/internal/core"
	"ptdft/internal/dist"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/mpi"
	"ptdft/internal/potential"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// TestResilientRecoveryMatchesUninterrupted is the ISSUE acceptance
// criterion: a 4-rank hybrid MTS run with -ckptevery 5 and an injected
// crash of each rank (one at a time, at a seeded fuzzed step) completes
// under dist.RunResilient and the final density/energy/current match the
// crash-free trajectory to 1e-10.
func TestResilientRecoveryMatchesUninterrupted(t *testing.T) {
	g, psi0, nb := fixtureT(t)
	const ranks, steps, dt, every = 4, 8, 1.0, 5
	opt := dist.ExchangeOptions{Strategy: dist.BcastOverlapped, MTSPeriod: 2, ACE: true}

	// Crash-free baseline through the plain (non-resilient) driver.
	want, wantE, wantJ := propagate(t, g, psi0, nb, true, ranks, steps, dt, opt)
	wantRho := potential.Density(g, want, nb, 2)

	crashRanks := []int{0, 1, 2, 3}
	if testing.Short() {
		crashRanks = []int{2}
	}
	for _, victim := range crashRanks {
		// Fuzzed crash step, deterministic per victim so failures reproduce.
		crashStep := 1 + rand.New(rand.NewSource(int64(2026+victim))).Int63n(steps-1)
		cfg := dist.ResilientConfig{
			Ranks: ranks, G: g, NB: nb,
			NewHamiltonian: func() *hamiltonian.Hamiltonian {
				return hamiltonian.New(g, siPots(), hamiltonian.Config{})
			},
			Hyb: xc.HSE06(), Hybrid: true,
			Field: &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}},
			Opt:   core.DefaultPTCN(), Ex: opt,
			Psi0: psi0, Steps: steps, Dt: dt,
			Natom: 8, Ecut: 3,
			Ckpt:        &checkpoint.Rolling{Base: filepath.Join(t.TempDir(), "resil.ckp")},
			CkptEvery:   every,
			MaxRestarts: 2, Deadline: 5 * time.Second,
			FaultFor: func(attempt int) *mpi.Fault {
				if attempt > 0 {
					return nil
				}
				return &mpi.Fault{Crashes: []mpi.CrashRankAt{{Rank: victim, AfterStep: crashStep}}}
			},
		}
		res, err := dist.RunResilient(cfg)
		if err != nil {
			t.Fatalf("victim=%d crash@%d: %v", victim, crashStep, err)
		}
		if res.Restarts != 1 {
			t.Errorf("victim=%d: restarts = %d, want 1", victim, res.Restarts)
		}
		if res.Step != steps {
			t.Errorf("victim=%d: finished at step %d, want %d", victim, res.Step, steps)
		}
		rho := potential.Density(g, res.Psi, nb, 2)
		if d := potential.DensityDiff(g, wantRho, rho, 32); d > 1e-10 {
			t.Errorf("victim=%d crash@%d: density differs from uninterrupted by %g", victim, crashStep, d)
		}
		if d := math.Abs(res.Energy - wantE); d > 1e-10 {
			t.Errorf("victim=%d crash@%d: energy differs by %g", victim, crashStep, d)
		}
		if d := math.Abs(res.Current[2] - wantJ[2]); d > 1e-10 {
			t.Errorf("victim=%d crash@%d: current differs by %g", victim, crashStep, d)
		}
		if d := wavefunc.MaxDiff(res.Psi, want); d > 1e-10 {
			t.Errorf("victim=%d crash@%d: orbitals differ by %g", victim, crashStep, d)
		}
	}
}
