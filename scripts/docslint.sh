#!/bin/sh
# docs-lint: every internal/ package must carry a package comment - a
# "// Package <name> ..." doc comment on a non-test file - stating what the
# package is for, and every cmd/ binary a "// Command <name> ..." comment
# stating what it does and how to invoke it. CI runs this on every PR; run
# it locally from the module root with: sh scripts/docslint.sh
set -u
fail=0
for d in internal/*/; do
	pkg=$(basename "$d")
	found=0
	for f in "$d"*.go; do
		case "$f" in
		*_test.go) continue ;;
		esac
		if grep -q "^// Package $pkg" "$f"; then
			found=1
			break
		fi
	done
	if [ "$found" -eq 0 ]; then
		echo "docs-lint: package $pkg ($d) has no '// Package $pkg' comment" >&2
		fail=1
	fi
done
for d in cmd/*/; do
	name=$(basename "$d")
	found=0
	for f in "$d"*.go; do
		case "$f" in
		*_test.go) continue ;;
		esac
		if grep -q "^// Command $name" "$f"; then
			found=1
			break
		fi
	done
	if [ "$found" -eq 0 ]; then
		echo "docs-lint: command $name ($d) has no '// Command $name' comment" >&2
		fail=1
	fi
done
# Every checked-in script must say how to run it: a self-referential
# "sh scripts/<name>" usage line in its header comment, so the scripts
# stay discoverable from the files themselves.
for f in scripts/*.sh; do
	name=$(basename "$f")
	if ! grep -q "sh scripts/$name" "$f"; then
		echo "docs-lint: script $f has no 'sh scripts/$name' usage line" >&2
		fail=1
	fi
done
if [ "$fail" -eq 0 ]; then
	echo "docs-lint: all internal packages, commands and scripts documented"
fi
exit $fail
