//go:build ignore

// tracecheck validates a Chrome trace-event JSON file emitted by the
// flight recorder (-tracefile on the ptdft/spectra/summitsim binaries,
// or trace.Recorder.WriteChromeTrace): the document must parse, every
// event must be well-formed (ph "M" metadata or ph "X" complete spans
// with non-negative timestamps), every span's tid must carry a
// thread_name record, and on every rank timeline the union of the spans
// must cover at least 95% of the first-to-last extent - the acceptance
// bar that catches an uninstrumented hot phase. Invoked by
// scripts/tracecheck.sh; run directly with
//
//	go run scripts/tracecheck.go <trace.json>
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type span struct{ start, end float64 }

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: go run scripts/tracecheck.go <trace.json>")
		os.Exit(2)
	}
	if err := check(os.Args[1]); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func check(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	names := map[int]string{}
	spans := map[int][]span{}
	nspan := 0
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				return fmt.Errorf("event %d: unexpected metadata %q", i, ev.Name)
			}
			label, _ := ev.Args["name"].(string)
			if label == "" {
				return fmt.Errorf("event %d: thread_name for tid %d has no name", i, ev.Tid)
			}
			names[ev.Tid] = label
		case "X":
			if ev.Name == "" || ev.Ts < 0 || ev.Dur < 0 {
				return fmt.Errorf("event %d: malformed span %+v", i, ev)
			}
			spans[ev.Tid] = append(spans[ev.Tid], span{ev.Ts, ev.Ts + ev.Dur})
			nspan++
		default:
			return fmt.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	if nspan == 0 {
		return fmt.Errorf("no complete (ph=X) span events")
	}
	tids := make([]int, 0, len(spans))
	for tid := range spans {
		if _, ok := names[tid]; !ok {
			return fmt.Errorf("tid %d has spans but no thread_name record", tid)
		}
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		cov := coverage(spans[tid])
		fmt.Printf("tracecheck: %s (tid %d): %d spans, %.1f%% of extent covered\n",
			names[tid], tid, len(spans[tid]), 100*cov)
		if cov < 0.95 {
			return fmt.Errorf("%s (tid %d): span union covers %.1f%% of the timeline extent, want >= 95%%",
				names[tid], tid, 100*cov)
		}
	}
	fmt.Printf("tracecheck: OK (%d spans across %d timelines)\n", nspan, len(tids))
	return nil
}

// coverage is union-of-intervals over first-to-last extent, the same
// quantity trace.Recorder.Coverage reports before export.
func coverage(ss []span) float64 {
	sort.Slice(ss, func(i, j int) bool { return ss[i].start < ss[j].start })
	lo, hi := ss[0].start, ss[0].end
	var union, curLo, curHi float64
	curLo, curHi = ss[0].start, ss[0].end
	for _, s := range ss[1:] {
		if s.end > hi {
			hi = s.end
		}
		if s.start > curHi {
			union += curHi - curLo
			curLo, curHi = s.start, s.end
			continue
		}
		if s.end > curHi {
			curHi = s.end
		}
	}
	union += curHi - curLo
	if hi <= lo {
		return 0
	}
	return union / (hi - lo)
}
