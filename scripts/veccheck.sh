#!/bin/sh
# veccheck: compile the lane-blocked kernels (internal/lanes) with the
# assembly listing enabled and report whether the compiler emitted packed
# vector arithmetic (VADDPD / VMULPD / VFMADD*) on amd64. The lanes layout
# is written so that a vectorizing backend CAN produce these - fixed-width
# bounds-check-free inner loops over split re/im arrays - but the stock gc
# compiler does not auto-vectorize, so on gc this check is expected to
# report scalar code. CI runs it as a non-blocking step: the exit status is
# advisory (0 = vector instructions found, 1 = none / not applicable), and
# the value of the check is the listing diff when a toolchain that does
# vectorize (gccgo -O3, a future gc with SIMD support) is pointed at it.
# Run locally from the module root with: sh scripts/veccheck.sh
set -u

arch=$(go env GOARCH)
if [ "$arch" != "amd64" ]; then
	echo "veccheck: GOARCH=$arch, packed-double scan only defined for amd64; skipping"
	exit 0
fi

asm=$(go build -gcflags=-S ./internal/lanes 2>&1) || {
	echo "veccheck: compile failed:" >&2
	echo "$asm" >&2
	exit 1
}

hits=$(echo "$asm" | grep -cE 'VADDPD|VMULPD|VFMADD' || true)
if [ "$hits" -gt 0 ]; then
	echo "veccheck: $hits packed vector instructions (VADDPD/VMULPD/VFMADD) in internal/lanes"
	exit 0
fi
echo "veccheck: no packed vector instructions in internal/lanes listing"
echo "veccheck: expected under stock gc (no auto-vectorizer); the lane layout keeps the loops vectorizable for backends that do"
exit 1
