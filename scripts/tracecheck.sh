#!/bin/sh
# tracecheck: validate a Chrome trace-event JSON file emitted by the
# flight recorder (ptdft -tracefile, spectra -tracefile, summitsim
# -tracefile). The file must parse, every event must be a thread_name
# metadata record or a complete (ph=X) span, and on every rank timeline
# the union of spans must cover >= 95% of the first-to-last extent - the
# observability acceptance bar: a hot phase the instrumentation misses
# shows up here as a coverage hole, not in a viewer three weeks later.
# CI runs it against a fresh 2-rank hybrid ACE+MTS trace on every PR.
# Run locally from the module root with: sh scripts/tracecheck.sh <trace.json>
set -u

if [ $# -ne 1 ]; then
	echo "usage: sh scripts/tracecheck.sh <trace.json>" >&2
	exit 2
fi

exec go run scripts/tracecheck.go "$1"
