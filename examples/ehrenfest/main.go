// Ehrenfest TDDFT-MD: displace one atom of Si8 off its lattice site,
// converge the electronic ground state of the distorted geometry, release
// the ions, and watch the coupled ion + PT-CN dynamics oscillate the atom
// about its site while the total energy (electronic + ion kinetic +
// ion-ion) stays conserved.
//
// The force on the displaced atom also yields the harmonic estimate of
// the oscillation period, T = 2 pi sqrt(M / k_eff) with k_eff = |F|/|dx|
// - compare it against the turning points of the printed trajectory.
//
// Expected runtime: ~20 s on a laptop (-short: a few seconds, used by CI).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"ptdft/internal/core"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/ion"
	"ptdft/internal/lattice"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/units"
)

func main() {
	short := flag.Bool("short", false, "run a few ion steps only (CI smoke mode)")
	flag.Parse()

	// 1. Si8 with atom 0 displaced 0.2 Bohr along x: the distorted
	//    geometry whose ground state seeds the trajectory.
	const dx = 0.2
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	if err := cell.DisplaceAtom(0, [3]float64{dx, 0, 0}); err != nil {
		log.Fatal(err)
	}
	site := lattice.MustSiliconSupercell(1, 1, 1).Atoms[0].Pos
	g := grid.MustNew(cell, 3)
	pots := map[int]*pseudo.Potential{0: pseudo.SiliconAH()}

	// 2. Ground state with the force-ready (gradient-capable) projectors.
	h := hamiltonian.New(g, pots, hamiltonian.Config{IonDynamics: true})
	gs, err := scf.GroundState(g, h, cell.NumBands(), scf.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Si8, atom 0 displaced %.2f Bohr; ground state E = %.8f Ha\n", dx, gs.Energy.Total())

	// 3. Couple PT-CN electrons to velocity-Verlet ions: one ion step of
	//    8 au (~194 as) spans K = 4 electronic steps of 2 au (~48 as).
	sys := &core.System{G: g, H: h, NB: cell.NumBands(), Occ: 2}
	pt := core.NewPTCN(sys, core.DefaultPTCN())
	se := &ion.SerialElectrons{P: pt, Psi: gs.Psi, Pots: pots}
	const dtIon, kSub = 8.0, 4
	v, err := ion.NewVerlet(cell, se, dtIon, kSub)
	if err != nil {
		log.Fatal(err)
	}

	// The harmonic estimate from the initial restoring force.
	if err := v.ComputeForces(); err != nil {
		log.Fatal(err)
	}
	keff := -v.F[0][0] / dx
	mass := units.SiliconMassAMU * units.ElectronMassPerAMU
	period := 2 * math.Pi * math.Sqrt(mass/keff)
	fmt.Printf("restoring force %.4f Ha/Bohr -> k_eff = %.3f Ha/Bohr^2, harmonic T = %.0f au (%.1f fs)\n\n",
		v.F[0][0], keff, period, period*units.FemtosecondPerAU)

	steps := 40
	if *short {
		steps = 4
	}
	e0, err := v.TotalEnergy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %12s %12s %16s %12s\n", "t (fs)", "x-x0 (Bohr)", "vx (au)", "E_total (Ha)", "drift (Ha)")
	var maxDrift float64
	for i := 0; i < steps; i++ {
		if err := v.Step(); err != nil {
			log.Fatal(err)
		}
		e, err := v.TotalEnergy()
		if err != nil {
			log.Fatal(err)
		}
		drift := math.Abs(e - e0)
		if drift > maxDrift {
			maxDrift = drift
		}
		d, _ := cell.MinimumImage(site, cell.Atoms[0].Pos)
		fmt.Printf("%8.3f %12.5f %12.4e %16.8f %12.3e\n",
			float64(v.Steps)*dtIon*units.FemtosecondPerAU, d[0], v.Vel[0][0], e, drift)
	}
	fmt.Printf("\nmax total-energy drift over %d ion steps: %.3e Ha\n", steps, maxDrift)
	fmt.Println("the released atom accelerates back toward its lattice site while")
	fmt.Println("E_electronic + E_ion-kinetic + E_ion-ion stays flat - the Ehrenfest")
	fmt.Println("conservation law the PT-CN coupling is built to respect.")
}
