// Laserpulse: the paper's physical setup in miniature (section 4) - a
// silicon supercell driven by a 380 nm Gaussian laser pulse, propagated
// with PT-CN under the hybrid (screened exchange) functional. Prints the
// field, the induced current, and the energy absorbed from the pulse.
//
// Expected runtime: ~10-15 seconds on a laptop (the hybrid ground state
// and the per-step Fock applications dominate).
package main

import (
	"flag"
	"fmt"
	"log"

	"ptdft/internal/core"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/observe"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/units"
	"ptdft/internal/xc"
)

func main() {
	hybrid := flag.Bool("hybrid", true, "use the HSE-like hybrid functional")
	steps := flag.Int("steps", 8, "number of PT-CN steps")
	dtAs := flag.Float64("dt", 24, "time step (as)")
	e0 := flag.Float64("e0", 0.01, "pulse peak field (Ha/bohr)")
	flag.Parse()

	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 3.5)
	nb := cell.NumBands()
	h := hamiltonian.New(g, map[int]*pseudo.Potential{0: pseudo.SiliconAH()},
		hamiltonian.Config{Hybrid: *hybrid, Params: xc.HSE06()})

	opt := scf.Defaults()
	gs, err := scf.GroundState(g, h, nb, opt)
	if err != nil {
		log.Fatal(err)
	}
	e0gs := gs.Energy.Total()
	fmt.Printf("Si%d ground state (hybrid=%v): %.8f Ha\n", cell.NumAtoms(), *hybrid, e0gs)

	// 380 nm pulse centered inside the simulated window.
	dt := units.AttosecondsToAU(*dtAs)
	total := dt * float64(*steps)
	pulse := laser.New380nm(*e0, total/2, total/6)
	fmt.Printf("pulse: 380 nm (%.2f eV photon), E0 = %g Ha/bohr, center %.1f as\n",
		units.WavelengthNmToOmegaAU(380)*units.EVPerHartree, *e0, units.AUToAttoseconds(total/2))

	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: pulse}
	prop := core.NewPTCN(sys, core.DefaultPTCN())
	psi := gs.Psi

	fmt.Printf("\n%8s %12s %12s %16s %12s\n", "t (as)", "E(t) field", "A(t)", "E_tot (Ha)", "J_z (au)")
	for i := 0; i < *steps; i++ {
		var err error
		psi, _, err = prop.Step(psi, dt)
		if err != nil {
			log.Fatal(err)
		}
		e := observe.Energy(sys, psi, prop.Time)
		j := observe.Current(sys, psi)
		ef := pulse.Efield(prop.Time)
		av := pulse.Avec(prop.Time)
		fmt.Printf("%8.1f %12.5f %12.5f %16.8f %12.4e\n",
			units.AUToAttoseconds(prop.Time), ef[2], av[2], e.Total(), j[2])
	}
	eFinal := observe.Energy(sys, psi, prop.Time).Total()
	fmt.Printf("\nenergy absorbed from the pulse: %.3e Ha (%.3f eV)\n",
		eFinal-e0gs, (eFinal-e0gs)*units.EVPerHartree)
}
