// Comparison: a laptop-scale version of Fig. 6 - the cost of advancing the
// same physical time with PT-CN (large steps, a few SCF iterations each)
// versus explicit RK4 (tiny steps for stability). Both propagate the same
// kicked Si8 system for the same physical duration; the program reports H
// applications, wall time, and verifies the observables agree. A second
// table then prices the hybrid functional with and without multiple time
// stepping (-mts: the ACE exchange rebuilt only on every 4th outer step,
// frozen in between) over the same physical span.
//
// Expected runtime: ~10-20 seconds on a laptop.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"ptdft/internal/core"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/potential"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/units"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

func main() {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 3.5)
	nb := cell.NumBands()
	h := hamiltonian.New(g, map[int]*pseudo.Potential{0: pseudo.SiliconAH()},
		hamiltonian.Config{})
	gs, err := scf.GroundState(g, h, nb, scf.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: kick}

	const tEndAU = 4.0 // ~97 as of physical time
	fmt.Printf("propagating Si%d for %.0f as after a kick\n\n",
		cell.NumAtoms(), units.AUToAttoseconds(tEndAU))

	// PT-CN with ~48 as steps.
	pt := core.NewPTCN(sys, core.DefaultPTCN())
	psiPT := wavefunc.Clone(gs.Psi)
	startPT := time.Now()
	hAppsPT := 0
	for pt.Time < tEndAU-1e-9 {
		var stats core.StepStats
		psiPT, stats, err = pt.Step(psiPT, 2.0)
		if err != nil {
			log.Fatal(err)
		}
		hAppsPT += stats.HApplications
	}
	wallPT := time.Since(startPT)

	// RK4 needs ~0.6 as steps for comparable accuracy/stability here.
	rk := core.NewRK4(sys)
	psiRK := wavefunc.Clone(gs.Psi)
	startRK := time.Now()
	hAppsRK := 0
	for rk.Time < tEndAU-1e-9 {
		var stats core.StepStats
		psiRK, stats, err = rk.Step(psiRK, 0.025)
		if err != nil {
			log.Fatal(err)
		}
		hAppsRK += stats.HApplications
	}
	wallRK := time.Since(startRK)

	rhoPT := potential.Density(g, psiPT, nb, 2)
	rhoRK := potential.Density(g, psiRK, nb, 2)
	dd := potential.DensityDiff(g, rhoPT, rhoRK, 2*float64(nb))
	fid := wavefunc.SubspaceFidelity(psiPT, psiRK, nb, g.NG)

	fmt.Printf("%-22s %14s %14s\n", "", "PT-CN (48 as)", "RK4 (0.6 as)")
	fmt.Printf("%-22s %14d %14d\n", "H applications", hAppsPT, hAppsRK)
	fmt.Printf("%-22s %14.2f %14.2f\n", "wall time (s)", wallPT.Seconds(), wallRK.Seconds())
	fmt.Printf("\nobservable agreement: density diff %.2e, subspace fidelity %.6f\n", dd, fid)
	fmt.Printf("H-application advantage: %.1fx fewer for PT-CN\n", float64(hAppsRK)/float64(hAppsPT))
	fmt.Printf("wall-clock advantage:    %.1fx\n", wallRK.Seconds()/wallPT.Seconds())
	if math.Abs(fid-1) > 1e-3 {
		fmt.Println("WARNING: propagators disagree - tighten the RK4 step")
	}
	fmt.Println("\n(the paper's Fig. 6 shows the same comparison at Si1536 scale on")
	fmt.Println(" Summit, where the hybrid-functional Fock cost amplifies the gap to 20-30x)")

	// Hybrid functional: every-step exchange vs. multiple time stepping
	// (MTS, M = 4: the ACE-compressed exchange rebuilt from Psi_n on every
	// 4th step and held frozen in between) over the same physical span.
	fmt.Println("\nhybrid functional: every-step exchange vs MTS (M=4, ACE)")
	hh := hamiltonian.New(g, map[int]*pseudo.Potential{0: pseudo.SiliconAH()},
		hamiltonian.Config{Hybrid: true, UseACE: true, Params: xc.HSE06()})
	hopt := scf.Defaults()
	hopt.HybridOuter = 3
	hgs, err := scf.GroundState(g, hh, nb, hopt)
	if err != nil {
		log.Fatal(err)
	}
	hsys := &core.System{G: g, H: hh, NB: nb, Occ: 2, Field: kick}
	runHybrid := func(mts int) (time.Duration, int, []complex128) {
		p := core.NewPTCN(hsys, core.DefaultPTCN())
		p.MTS = mts
		psi := wavefunc.Clone(hgs.Psi)
		start := time.Now()
		hApps := 0
		for p.Time < tEndAU-1e-9 {
			var stats core.StepStats
			var err error
			psi, stats, err = p.Step(psi, 1.0)
			if err != nil {
				log.Fatal(err)
			}
			hApps += stats.HApplications
		}
		return time.Since(start), hApps, psi
	}
	wallEvery, appsEvery, psiEvery := runHybrid(0)
	wallMTS, appsMTS, psiMTS := runHybrid(4)
	ddH := potential.DensityDiff(g,
		potential.Density(g, psiEvery, nb, 2), potential.Density(g, psiMTS, nb, 2), 2*float64(nb))
	fmt.Printf("%-22s %14s %14s\n", "", "every step", "MTS M=4")
	fmt.Printf("%-22s %14d %14d\n", "H applications", appsEvery, appsMTS)
	fmt.Printf("%-22s %14.2f %14.2f\n", "wall time (s)", wallEvery.Seconds(), wallMTS.Seconds())
	fmt.Printf("\nMTS wall-clock advantage: %.1fx at density deviation %.1e\n",
		wallEvery.Seconds()/wallMTS.Seconds(), ddH)
}
