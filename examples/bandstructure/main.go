// Bandstructure: the k-point machinery the paper mentions in section 3.1
// ("for solid state systems with k-point sampling, the wavefunctions can
// naturally be grouped according to the k-points"). Converges the silicon
// density at the Gamma point, then diagonalizes H_k non-self-consistently
// along the L - Gamma - X path of the cubic cell, printing the band
// energies and the gap.
//
// Expected runtime: ~5 seconds on a laptop.
package main

import (
	"fmt"
	"log"
	"math"

	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/lattice"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/units"
)

func main() {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 5)
	pots := map[int]*pseudo.Potential{0: pseudo.SiliconAH()}
	h := hamiltonian.New(g, pots, hamiltonian.Config{})

	nocc := cell.NumBands() // 16 doubly occupied
	gs, err := scf.GroundState(g, h, nocc, scf.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Gamma-point ground state: %.6f Ha\n", gs.Energy.Total())

	// k-path in units of 2*pi/a for the conventional cubic cell:
	// L = (1/2,1/2,1/2), Gamma, X = (0,0,1).
	b := 2 * math.Pi / cell.L[0]
	type kpt struct {
		label string
		frac  [3]float64
	}
	path := []kpt{}
	const nseg = 4
	for i := nseg; i >= 1; i-- {
		f := float64(i) / nseg / 2
		label := ""
		if i == nseg {
			label = "L"
		}
		path = append(path, kpt{label, [3]float64{f, f, f}})
	}
	path = append(path, kpt{"G", [3]float64{0, 0, 0}})
	for i := 1; i <= nseg; i++ {
		f := float64(i) / nseg
		label := ""
		if i == nseg {
			label = "X"
		}
		path = append(path, kpt{label, [3]float64{0, 0, f}})
	}

	nbands := nocc + 4 // a few empty bands for the gap
	fmt.Printf("\n%-4s %-20s  bands %d..%d (eV, relative to VBM)\n", "k", "fractional", nocc-1, nocc+2)
	var vbm, cbm = math.Inf(-1), math.Inf(1)
	results := make([][]float64, len(path))
	for i, kp := range path {
		k := [3]float64{kp.frac[0] * b, kp.frac[1] * b, kp.frac[2] * b}
		nl := pseudo.BuildNonlocalBloch(g, pots, k)
		h.SetBloch(k, nl)
		evals, _, err := scf.DiagonalizeFixed(g, h, nbands, 25, 7)
		if err != nil {
			log.Fatal(err)
		}
		results[i] = evals
		if evals[nocc-1] > vbm {
			vbm = evals[nocc-1]
		}
		if evals[nocc] < cbm {
			cbm = evals[nocc]
		}
	}
	h.SetBloch([3]float64{}, nil)

	for i, kp := range path {
		e := results[i]
		fmt.Printf("%-4s (%.2f,%.2f,%.2f)  ", kp.label, kp.frac[0], kp.frac[1], kp.frac[2])
		for bnd := nocc - 2; bnd < nocc+2 && bnd < len(e); bnd++ {
			fmt.Printf("%9.3f", (e[bnd]-vbm)*units.EVPerHartree)
		}
		fmt.Println()
	}
	fmt.Printf("\nindirect gap estimate: %.3f eV (model pseudopotential; experimental Si: 1.17 eV)\n",
		(cbm-vbm)*units.EVPerHartree)
}
