// Quickstart: the smallest end-to-end use of the library - converge the
// Si8 ground state with the semi-local functional, kick it, and propagate
// ten PT-CN steps of ~24 as while watching the conserved energy.
//
// Expected runtime: a few seconds on a laptop.
package main

import (
	"fmt"
	"log"

	"ptdft/internal/core"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/observe"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/units"
)

func main() {
	// 1. Build the physical system: one conventional silicon cell
	//    (8 atoms, 32 valence electrons, 16 doubly-occupied orbitals).
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 4.0) // 4 Ha cutoff: laptop scale
	fmt.Printf("Si%d: wavefunction grid %v, G-sphere %d, bands %d\n",
		cell.NumAtoms(), g.N, g.NG, cell.NumBands())

	// 2. Assemble the Hamiltonian and converge the ground state.
	h := hamiltonian.New(g, map[int]*pseudo.Potential{0: pseudo.SiliconAH()},
		hamiltonian.Config{})
	gs, err := scf.GroundState(g, h, cell.NumBands(), scf.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground state energy: %.8f Ha after %d SCF iterations\n",
		gs.Energy.Total(), gs.SCFIterations)

	// 3. Excite with a weak delta kick and propagate with PT-CN.
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	sys := &core.System{G: g, H: h, NB: cell.NumBands(), Occ: 2, Field: kick}
	prop := core.NewPTCN(sys, core.DefaultPTCN())

	dt := units.AttosecondsToAU(24)
	psi := gs.Psi
	fmt.Printf("\n%8s %16s %14s %5s\n", "t (as)", "E (Ha)", "J_z (au)", "SCF")
	for step := 0; step < 10; step++ {
		var stats core.StepStats
		psi, stats, err = prop.Step(psi, dt)
		if err != nil {
			log.Fatal(err)
		}
		e := observe.Energy(sys, psi, prop.Time)
		j := observe.Current(sys, psi)
		fmt.Printf("%8.1f %16.8f %14.4e %5d\n",
			units.AUToAttoseconds(prop.Time), e.Total(), j[2], stats.SCFIterations)
	}
	fmt.Println("\nenergy is conserved after the kick - the PT-CN propagation is stable")
	fmt.Println("at steps ~50x larger than explicit RK4 would allow.")
}
