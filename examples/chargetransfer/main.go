// Chargetransfer: excited-state charge transfer across a hetero-interface,
// the application the paper's introduction singles out as requiring large
// systems ("for many problems, e.g., for excited state charge transfer,
// large system simulation is essential"). Builds a model Si/Ge bilayer
// (one conventional cell of each, sharing the lattice), drives it with a
// laser pulse polarized across the interface, and tracks the electron
// count in each layer and the excited-carrier population with PT-CN.
//
// Expected runtime: ~10 seconds on a laptop.
package main

import (
	"fmt"
	"log"

	"ptdft/internal/core"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/observe"
	"ptdft/internal/potential"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/units"
	"ptdft/internal/wavefunc"
)

func main() {
	// A 1x1x2 supercell: the lower cell silicon, the upper cell the
	// germanium-like model species (same lattice constant - a coherent
	// model interface).
	base := lattice.MustSiliconSupercell(1, 1, 2)
	cell, err := lattice.NewCell(base.L[0], base.L[1], base.L[2])
	if err != nil {
		log.Fatal(err)
	}
	cell.Species = []lattice.Species{{Symbol: "Si", Zval: 4}, {Symbol: "Ge", Zval: 4}}
	half := base.L[2] / 2
	for _, at := range base.Atoms {
		sp := 0
		if at.Pos[2] >= half {
			sp = 1
		}
		cell.Atoms = append(cell.Atoms, lattice.Atom{Species: sp, Pos: at.Pos})
	}
	pots := map[int]*pseudo.Potential{0: pseudo.SiliconAH(), 1: pseudo.GermaniumModel()}

	g := grid.MustNew(cell, 3)
	nb := cell.NumBands()
	fmt.Printf("Si8/Ge8 bilayer: %d atoms, %d bands, grid %v\n", cell.NumAtoms(), nb, g.N)

	h := hamiltonian.New(g, pots, hamiltonian.Config{})
	gs, err := scf.GroundState(g, h, nb, scf.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	qSi0 := observe.LayerCharge(g, gs.Rho, 0, half)
	qGe0 := observe.LayerCharge(g, gs.Rho, half, base.L[2])
	fmt.Printf("ground state: E = %.6f Ha; layer charges Si %.3f e, Ge %.3f e\n",
		gs.Energy.Total(), qSi0, qGe0)
	fmt.Println("(the softer Ge-model potential already polarizes the interface slightly)")

	// Pulse polarized across the interface.
	dt := units.AttosecondsToAU(24)
	steps := 8
	pulse := laser.New380nm(0.02, dt*float64(steps)/2, dt*float64(steps)/6)
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: pulse}
	prop := core.NewPTCN(sys, core.DefaultPTCN())

	psi := wavefunc.Clone(gs.Psi)
	fmt.Printf("\n%8s %12s %12s %14s %10s\n", "t (as)", "dQ(Si) e", "dQ(Ge) e", "E_tot (Ha)", "n_exc")
	for i := 0; i < steps; i++ {
		psi, _, err = prop.Step(psi, dt)
		if err != nil {
			log.Fatal(err)
		}
		rho := potential.Density(g, psi, nb, 2)
		qSi := observe.LayerCharge(g, rho, 0, half)
		qGe := observe.LayerCharge(g, rho, half, base.L[2])
		e := observe.Energy(sys, psi, prop.Time)
		nexc := observe.ExcitedElectrons(sys, gs.Psi, psi)
		fmt.Printf("%8.1f %+12.5f %+12.5f %14.6f %10.5f\n",
			units.AUToAttoseconds(prop.Time), qSi-qSi0, qGe-qGe0, e.Total(), nexc)
	}
	fmt.Println("\ncharge oscillates between the layers as the pulse pumps carriers across")
	fmt.Println("the interface; at the paper's Si1536 scale the same physics runs with the")
	fmt.Println("hybrid functional at 1.5 h/fs on 768 GPUs.")
}
