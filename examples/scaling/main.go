// Scaling: strong scaling of the distributed PT-CN solver on real physics
// (goroutine-MPI ranks on this machine), side by side with the calibrated
// Summit model's projection for the paper's Si1536 system. Demonstrates
// the band-index parallelization limit (ranks <= bands), the Alltoallv
// layout transpose, and the communication accounting per collective class.
//
// Expected runtime: a few seconds on a laptop.
package main

import (
	"fmt"
	"log"
	"time"

	"ptdft/internal/core"
	"ptdft/internal/dist"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/mpi"
	"ptdft/internal/perf"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

func main() {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 3.5)
	nb := cell.NumBands()
	pots := map[int]*pseudo.Potential{0: pseudo.SiliconAH()}
	h := hamiltonian.New(g, pots, hamiltonian.Config{})
	gs, err := scf.GroundState(g, h, nb, scf.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}

	fmt.Printf("real strong scaling: Si%d, %d bands, one PT-CN step (hybrid exchange)\n\n", cell.NumAtoms(), nb)
	fmt.Printf("%6s %12s %10s %14s %14s\n", "ranks", "wall (s)", "speedup", "Bcast (MB)", "A2AV (MB)")
	var base float64
	for _, p := range []int{1, 2, 4, 8} {
		wall, stats := oneStep(g, pots, gs.Psi, nb, kick, p)
		if p == 1 {
			base = wall
		}
		fmt.Printf("%6d %12.2f %9.2fx %14.1f %14.1f\n", p, wall, base/wall,
			float64(stats.BytesFor(mpi.ClassBcast))/1e6,
			float64(stats.BytesFor(mpi.ClassAlltoallv))/1e6)
	}

	fmt.Println("\nSummit model projection for the paper's Si1536 (Table 1 shape):")
	m := perf.New(perf.Reference)
	fmt.Printf("%6s %12s %10s %12s\n", "GPUs", "step (s)", "speedup", "HPsi share")
	for _, p := range perf.GPUCounts {
		fmt.Printf("%6d %12.1f %9.1fx %11.1f%%\n", p, m.StepTotal(p), m.Speedup(p), m.HPsiPercent(p))
	}
	fmt.Println("\n(scaling saturates near 768 GPUs where MPI_Bcast dominates - the")
	fmt.Println(" paper's conclusion that network bandwidth is the limit)")
}

func oneStep(g *grid.Grid, pots map[int]*pseudo.Potential, psi0 []complex128, nb int, field *laser.Kick, ranks int) (float64, *mpi.Stats) {
	start := time.Now()
	stats := mpi.Run(ranks, func(c *mpi.Comm) {
		d, err := dist.NewCtx(c, g, nb, 2)
		if err != nil {
			panic(err)
		}
		h := hamiltonian.New(g, pots, hamiltonian.Config{})
		s := dist.NewPTCNSolver(d, h, xc.HSE06(), true, field, core.DefaultPTCN(),
			dist.ExchangeOptions{Strategy: dist.BcastOverlapped, SinglePrecision: true})
		lo, hi := d.BandRange(c.Rank())
		local := wavefunc.Clone(psi0[lo*g.NG : hi*g.NG])
		if _, _, err := s.Step(local, 1.0); err != nil {
			panic(err)
		}
	})
	return time.Since(start).Seconds(), stats
}
