// Absorption: compute the optical absorption spectrum of Si8 from a
// delta-kick rt-TDDFT run - one of the paper's motivating applications
// ("light absorption spectrum"). A weak instantaneous vector-potential
// kick excites all dipole-allowed transitions at once; the Fourier
// transform of the induced current yields the dynamical conductivity,
// whose peaks sit at the optical transition energies.
//
// Expected runtime: ~5-10 seconds on a laptop.
package main

import (
	"fmt"
	"log"

	"ptdft/internal/core"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/observe"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/units"
)

func main() {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 3.5)
	nb := cell.NumBands()
	h := hamiltonian.New(g, map[int]*pseudo.Potential{0: pseudo.SiliconAH()},
		hamiltonian.Config{})
	gs, err := scf.GroundState(g, h, nb, scf.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground state: %.6f Ha\n", gs.Energy.Total())

	const (
		kick    = 0.005
		dtAs    = 18.0
		nsteps  = 60
		wmaxEV  = 20.0
		npoints = 60
	)
	field := &laser.Kick{K: kick, Pol: [3]float64{0, 0, 1}}
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: field}
	prop := core.NewPTCN(sys, core.DefaultPTCN())
	dt := units.AttosecondsToAU(dtAs)

	psi := gs.Psi
	jz := make([]float64, 0, nsteps)
	for i := 0; i < nsteps; i++ {
		psi, _, err = prop.Step(psi, dt)
		if err != nil {
			log.Fatal(err)
		}
		sys.Prepare(psi, prop.Time)
		j := observe.Current(sys, psi)
		jz = append(jz, j[2])
	}
	fmt.Printf("propagated %.2f fs; transforming current trace\n", prop.Time*units.FemtosecondPerAU)

	wmax := wmaxEV / units.EVPerHartree
	// jz[i] was recorded after step i+1, i.e. at t = (i+1)*dt: t0 = dt.
	omegas, sigma := observe.AbsorptionSpectrum(jz, dt, dt, kick, wmax, npoints, 0.01)

	// Render a small terminal plot of Re sigma(omega).
	var peak float64
	for _, s := range sigma {
		if s > peak {
			peak = s
		}
	}
	fmt.Println("\nomega (eV)  Re sigma")
	for i := range omegas {
		bar := ""
		if peak > 0 && sigma[i] > 0 {
			n := int(sigma[i] / peak * 50)
			for j := 0; j < n; j++ {
				bar += "#"
			}
		}
		fmt.Printf("%9.2f  %11.4e %s\n", omegas[i]*units.EVPerHartree, sigma[i], bar)
	}
	fmt.Println("\npeaks mark the optical transitions of the model silicon crystal;")
	fmt.Println("a longer run (cmd/spectra) sharpens them.")
}
